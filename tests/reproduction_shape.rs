//! Shape tests: at reduced scale, the reproduction must exhibit the
//! paper's qualitative structure — orderings, rough factors, and
//! crossovers — even where absolute numbers drift with scale.

use cookieguard_repro::analysis::{
    api_usage, cross_domain_summary, detect_exfiltration, detect_manipulation, dom_pilot_stats,
    inclusion_stats, prevalence_stats, Dataset,
};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

struct Context {
    ds: Dataset,
    gen: WebGenerator,
}

fn crawl(sites: usize) -> Context {
    let gen = WebGenerator::new(GenConfig::small(sites), 0xC00C1E);
    let (outcomes, _) = crawl_range(&gen, &VisitConfig::regular(), 1, sites, 4);
    let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
    Context { ds, gen }
}

#[test]
fn headline_shape_holds_at_small_scale() {
    let ctx = crawl(500);
    let engine = cookieguard_repro::analysis::build_filter_engine(ctx.gen.registry());
    let entities = builtin_entity_map();

    // §4.2: roughly three-quarters of crawls complete.
    let completion = ctx.ds.site_count() as f64 / ctx.ds.crawled as f64;
    assert!(
        (0.65..0.85).contains(&completion),
        "completion {completion}"
    );

    // §5.1: third-party scripts are near-ubiquitous and mostly tracking.
    let p = prevalence_stats(&ctx.ds, &engine);
    assert!(
        p.sites_with_third_party_pct > 85.0,
        "{}",
        p.sites_with_third_party_pct
    );
    assert!(
        (10.0..35.0).contains(&p.avg_third_party_scripts),
        "{}",
        p.avg_third_party_scripts
    );
    assert!(
        (55.0..85.0).contains(&p.ad_tracking_share_pct),
        "{}",
        p.ad_tracking_share_pct
    );
    // Third parties set several times more cookies than the site itself.
    assert!(p.avg_cookies_third_party > 2.0 * p.avg_cookies_first_party);

    // §5.2: document.cookie dwarfs the CookieStore API.
    let usage = api_usage(&ctx.ds);
    assert!(usage.doc_cookie_sites_pct > 90.0);
    assert!(usage.cookie_store_sites_pct < 10.0);
    assert!(usage.doc_cookie_pairs > 50 * usage.cookie_store_pairs.max(1));

    // Table 1 ordering and rough magnitudes.
    let exfil = detect_exfiltration(&ctx.ds, &entities);
    let manip = detect_manipulation(&ctx.ds, &entities);
    let t1 = cross_domain_summary(&ctx.ds, &exfil, &manip);
    assert!(t1.doc_exfiltration.sites_pct > t1.doc_overwriting.sites_pct);
    assert!(t1.doc_overwriting.sites_pct > t1.doc_deleting.sites_pct);
    assert!((30.0..80.0).contains(&t1.doc_exfiltration.sites_pct));
    assert!((15.0..50.0).contains(&t1.doc_overwriting.sites_pct));
    assert!((2.0..15.0).contains(&t1.doc_deleting.sites_pct));
    // Affected-cookie shares are single-digit-ish.
    assert!(t1.doc_exfiltration.cookies_pct < 20.0);

    // §5.5: value/expiry changes dominate overwrites; domain and path
    // rescoping are rare. (At this scale value vs expires can swap by a
    // few points, so assert the dominant/rare split rather than the
    // exact order within each group.)
    let a = manip.attr_changes;
    assert!(a.value_pct > 50.0, "value {}", a.value_pct);
    assert!(a.expires_pct > 40.0, "expires {}", a.expires_pct);
    assert!(a.domain_pct < 25.0, "domain {}", a.domain_pct);
    assert!(a.path_pct < 15.0, "path {}", a.path_pct);

    // §5.6: indirect inclusions outnumber direct ones.
    let inc = inclusion_stats(&ctx.ds, &engine);
    assert!(
        inc.indirect_to_direct_ratio > 1.2,
        "{}",
        inc.indirect_to_direct_ratio
    );

    // §8 pilot: cross-domain DOM mutation is a minority phenomenon.
    let dom = dom_pilot_stats(&ctx.ds);
    assert!(
        (2.0..20.0).contains(&dom.sites_with_cross_dom_pct),
        "{}",
        dom.sites_with_cross_dom_pct
    );
}

#[test]
fn table2_is_dominated_by_known_trackers() {
    let ctx = crawl(500);
    let exfil = detect_exfiltration(&ctx.ds, &builtin_entity_map());
    let rows = exfil.table2(20);
    assert!(!rows.is_empty());
    // The Google-family cookies must appear near the top.
    let names: Vec<&str> = rows.iter().map(|r| r.cookie.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("_g")),
        "expected a Google-family cookie in Table 2, got {names:?}"
    );
    // Fig. 2's head is a known tracking domain.
    let fig2 = exfil.fig2(20, 1_000);
    assert!(!fig2.is_empty());
}

#[test]
fn table5_shows_fbp_and_consent_dynamics() {
    let ctx = crawl(600);
    let manip = detect_manipulation(&ctx.ds, &builtin_entity_map());
    let overwrites = manip.table5(false, 10);
    let deletes = manip.table5(true, 10);
    assert!(!overwrites.is_empty(), "overwrites must be observed");
    assert!(!deletes.is_empty(), "deletes must be observed");
    // Deletions skew to the bing/google tracker cookies consent managers
    // target.
    let delete_names: Vec<&str> = deletes.iter().map(|r| r.cookie.as_str()).collect();
    assert!(
        delete_names
            .iter()
            .any(|n| n.starts_with("_uet") || n.starts_with("_g") || *n == "_fbp"),
        "{delete_names:?}"
    );
}

#[test]
fn perf_shape_heavy_tail_and_modest_overhead() {
    // The A/B visits are unpaired (independent noise draws), so the
    // mean-difference statistic needs several hundred valid pairs before
    // the systematic ~11% guard shift dominates the σ≈1.0 log-normal
    // visit noise of the vendored RNG stream.
    let gen = WebGenerator::new(GenConfig::small(600), 0xC00C1E);
    let report = cookieguard_repro::perf::run_paired_measurement(
        &gen,
        &cookieguard_repro::cookieguard::GuardConfig::strict(),
        1,
        600,
        4,
    );
    assert!(report.valid_pairs > 300);
    // Heavy tail: mean well above median in every condition.
    assert!(report.dcl.0.mean_ms > 1.3 * report.dcl.0.median_ms);
    assert!(report.load.1.mean_ms > 1.3 * report.load.1.median_ms);
    // The guard adds a modest (not catastrophic) overhead.
    let added = report.mean_added_ms();
    assert!(added > 0.0, "guard must cost something, got {added}");
    assert!(added < 1_500.0, "overhead implausibly large: {added}");
}
