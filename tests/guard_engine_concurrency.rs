//! Concurrency smoke test for the engine/session split: one shared
//! `GuardEngine`, many `GuardSession`s on different threads, stats
//! aggregating correctly — the deployment shape of a production crawl.

use cookieguard_repro::cookieguard::{Caller, GuardConfig, GuardEngine, GuardStats};
use std::sync::Arc;

#[test]
fn one_engine_many_threads_stats_aggregate() {
    let engine = GuardEngine::shared(GuardConfig::strict().with_whitelisted("partner.example"));

    const THREADS: usize = 8;
    const SITES_PER_THREAD: usize = 25;

    let per_thread: Vec<GuardStats> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|t| {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let mut total = GuardStats::default();
                    for i in 0..SITES_PER_THREAD {
                        let site = format!("site-{t}-{i}.example");
                        let mut session = engine.session(&site);
                        // A tracker writes its identifier (allowed: new
                        // cookie), then a rival tries to overwrite it
                        // (blocked: cross-domain).
                        assert!(session
                            .authorize_write(&Caller::external("tracker.example"), "_tid")
                            .is_allow());
                        assert!(!session
                            .authorize_write(&Caller::external("rival.example"), "_tid")
                            .is_allow());
                        // The whitelisted partner (engine-level state) and
                        // the site owner always pass; inline never does
                        // under the strict engine.
                        assert!(session.may_observe(&Caller::external("partner.example"), "_tid"));
                        assert!(session.may_observe(&Caller::external(&site), "_tid"));
                        let filtered = session.filter_names(&Caller::inline(), &["_tid", "other"]);
                        assert!(filtered.is_empty());
                        total = total.merge(&session.stats());
                    }
                    total
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let grand = per_thread
        .iter()
        .fold(GuardStats::default(), |acc, s| acc.merge(s));
    let visits = (THREADS * SITES_PER_THREAD) as u64;
    assert_eq!(grand.writes_allowed, visits, "one allowed write per visit");
    assert_eq!(grand.writes_blocked, visits, "one blocked write per visit");
    assert_eq!(grand.reads_filtered, visits, "one filtered read per visit");
    assert_eq!(
        grand.cookies_filtered,
        2 * visits,
        "both names hidden from inline"
    );
    // The engine itself was never duplicated: every session borrowed the
    // same Arc.
    assert_eq!(Arc::strong_count(&engine), 1, "all sessions dropped");
}

#[test]
fn engine_is_send_sync_and_decisions_are_site_relative() {
    let engine = GuardEngine::shared(GuardConfig::strict());
    let handle = std::thread::spawn({
        let engine = Arc::clone(&engine);
        move || {
            // Same caller, same creator, different site context.
            let caller = Caller::external("shop.example");
            assert!(engine
                .check("shop.example", &caller, Some("anyone.net"))
                .is_allow());
            assert!(!engine
                .check("news.example", &caller, Some("anyone.net"))
                .is_allow());
        }
    });
    handle.join().expect("engine must cross threads");
}
