//! Umbrella crate for the CookieGuard reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so that examples, integration
//! tests, and downstream users can depend on a single crate. See the README
//! for an architecture overview and `PAPER_MAP.md` for the map from every
//! reproduced paper section/table/figure to the crate, types, tests, and
//! CLI command that reproduce it.

pub use cg_analysis as analysis;
pub use cg_baselines as baselines;
pub use cg_breakage as breakage;
pub use cg_browser as browser;
pub use cg_cookiejar as cookiejar;
pub use cg_crawlstore as crawlstore;
pub use cg_dom as dom;
pub use cg_domguard as domguard;
pub use cg_entity as entity;
pub use cg_filterlist as filterlist;
pub use cg_hash as hash;
pub use cg_http as http;
pub use cg_instrument as instrument;
pub use cg_perf as perf;
pub use cg_script as script;
pub use cg_service as service;
pub use cg_telemetry as telemetry;
pub use cg_url as url;
pub use cg_webgen as webgen;
pub use cookieguard_core as cookieguard;
